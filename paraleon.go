// Package paraleon is a from-scratch Go reproduction of "PARALEON
// (Chameleon): Automatic and Adaptive Tuning for DCQCN Parameters in RDMA
// Networks": a packet-level RoCEv2 simulator (DCQCN + PFC + ECN on CLOS
// fabrics), Paraleon's sketch-based millisecond runtime monitor and
// guided simulated-annealing parameter tuner, the paper's baselines (ACC,
// DCQCN+, NetFlow, static expert settings), and a real TCP control plane
// mirroring the prototype.
//
// This file is the public facade: it re-exports the pieces a downstream
// user composes, so examples and applications can work from a single
// import. The implementation lives under internal/, one package per
// subsystem:
//
//	eventsim  – deterministic discrete-event engine
//	topology  – CLOS fabrics and ECMP routing
//	netdev    – switches, ports, PFC, ECN marking
//	dcqcn     – the full DCQCN parameter surface and RP/NP machines
//	rnic      – host RNICs, QP pacing, RTT probes
//	sim       – wiring it into a runnable network
//	sketch    – Elastic Sketch
//	monitor   – ternary flow states, FSD aggregation, KL trigger
//	core      – utility function and the tuning control loop
//	tuner     – pluggable strategies: guided SA, multi-agent ECN, bandit
//	baselines – ACC, DCQCN+, NetFlow
//	workload  – FB_Hadoop / SolarRPC / alltoall generators
//	metrics   – slowdowns, CDFs, time series
//	ctrlrpc   – the real TCP control plane
//	harness   – one runner per paper table/figure
package paraleon

import (
	"repro/internal/core"
	"repro/internal/ctrlrpc"
	"repro/internal/dcqcn"
	"repro/internal/eventsim"
	"repro/internal/harness"
	"repro/internal/metrics"
	"repro/internal/monitor"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/tuner"
	"repro/internal/workload"
)

// Time is virtual simulation time in nanoseconds.
type Time = eventsim.Time

// Common durations.
const (
	Microsecond = eventsim.Microsecond
	Millisecond = eventsim.Millisecond
	Second      = eventsim.Second
)

// Params is the full DCQCN parameter vector (RNIC + switch ECN).
type Params = dcqcn.Params

// DefaultParams is the NVIDIA default setting; ExpertParams the
// hand-tuned Table I setting.
var (
	DefaultParams = dcqcn.DefaultParams
	ExpertParams  = dcqcn.ExpertParams
)

// Network is a wired, runnable RoCEv2 fabric simulation.
type Network = sim.Network

// NetworkConfig parameterizes a network build; ClosConfig the fabric.
type (
	NetworkConfig = sim.Config
	ClosConfig    = topology.ClosConfig
)

// NewNetwork builds a network; DefaultNetworkConfig is a small fast
// fabric; PaperClosConfig the paper's 128-host NS-3 topology.
var (
	NewNetwork           = sim.New
	DefaultNetworkConfig = sim.DefaultConfig
	PaperClosConfig      = topology.PaperClosConfig
)

// System is a full Paraleon deployment (monitor + controller + tuner)
// attached to a network; SystemConfig mirrors Table III.
type (
	System       = core.System
	SystemConfig = core.SystemConfig
)

// SAConfig parameterizes the annealing search.
type SAConfig = core.SAConfig

// Tuner is the pluggable search-strategy interface; every registered
// strategy (sa, multiecn, bandit) satisfies it. TunerConfig carries the
// per-strategy knobs; BanditConfig and MultiECNConfig parameterize the
// two alternatives to SA. Select a strategy by name via
// SystemConfig.Tuner or NetworkConfig.Tuner.
type (
	Tuner          = tuner.Tuner
	TunerConfig    = tuner.Config
	BanditConfig   = tuner.BanditConfig
	MultiECNConfig = tuner.MultiECNConfig
)

// NewTuner builds a registered strategy by name ("" selects sa);
// TunerNames lists the registry.
var (
	NewTuner   = tuner.New
	TunerNames = tuner.Names
)

// Attach wires Paraleon onto a network; DefaultSystemConfig is Table III.
// ShortSAConfig compresses the SA schedule for short runs.
// AttachPartitioned deploys one controller per cluster of racks with
// heterogeneous parameters (§V).
var (
	Attach              = core.Attach
	AttachPartitioned   = core.AttachPartitioned
	DefaultSystemConfig = core.DefaultSystemConfig
	ShortSAConfig       = core.ShortSAConfig
	Pretrain            = core.Pretrain
)

// Weights are the utility-function weights ω_TP/ω_RTT/ω_PFC.
type Weights = core.Weights

// DefaultWeights is (0.2, 0.5, 0.3); ThroughputWeights (0.5, 0.2, 0.3).
var (
	DefaultWeights    = core.DefaultWeights
	ThroughputWeights = core.ThroughputWeights
	Utility           = core.Utility
)

// FSD is a network-wide flow size distribution; RuntimeSample one
// interval's utility inputs.
type (
	FSD           = monitor.FSD
	RuntimeSample = monitor.RuntimeSample
)

// Workload generators.
type (
	PoissonConfig  = workload.PoissonConfig
	AlltoallConfig = workload.AlltoallConfig
	InfluxConfig   = workload.InfluxConfig
	SizeCDF        = workload.SizeCDF
)

// IncastConfig and PermutationConfig cover the remaining canonical
// datacenter patterns; TraceFlow supports trace record/replay.
type (
	IncastConfig      = workload.IncastConfig
	PermutationConfig = workload.PermutationConfig
	TraceFlow         = workload.TraceFlow
)

// InstallPoisson, InstallAlltoall, InstallInflux, InstallIncast,
// InstallPermutation and InstallReplay schedule traffic; FBHadoop,
// SolarRPC and WebSearch are the built-in size distributions; SaveTrace,
// LoadTrace and RecordTrace round-trip workloads through CSV.
var (
	InstallPoisson     = workload.InstallPoisson
	InstallAlltoall    = workload.InstallAlltoall
	InstallInflux      = workload.InstallInflux
	InstallIncast      = workload.InstallIncast
	InstallPermutation = workload.InstallPermutation
	InstallReplay      = workload.InstallReplay
	SaveTrace          = workload.SaveTrace
	LoadTrace          = workload.LoadTrace
	RecordTrace        = workload.RecordTrace
	FBHadoop           = workload.FBHadoop
	SolarRPC           = workload.SolarRPC
	WebSearch          = workload.WebSearch
)

// FlowRecord is one completed flow; FCTSummary an aggregate.
type (
	FlowRecord = sim.FlowRecord
	FCTSummary = metrics.FCTSummary
)

// Summarize computes FCT statistics for a finished run.
var Summarize = metrics.Summarize

// Scheme is one experiment arm; Scale one fabric size.
type (
	Scheme = harness.Scheme
	Scale  = harness.Scale
)

// Experiment arms and scales.
var (
	DefaultScheme   = harness.DefaultScheme
	ExpertScheme    = harness.ExpertScheme
	ParaleonScheme  = harness.ParaleonScheme
	ACCScheme       = harness.ACCScheme
	DCQCNPlusScheme = harness.DCQCNPlusScheme
	QuickScale      = harness.QuickScale
	MediumScale     = harness.MediumScale
	PaperScale      = harness.PaperScale
)

// ControllerConfig configures the real TCP controller; ServeController
// starts one and DialController connects an agent to it.
type ControllerConfig = ctrlrpc.ServerConfig

var (
	ServeController         = ctrlrpc.Serve
	DialController          = ctrlrpc.Dial
	DefaultControllerConfig = ctrlrpc.DefaultServerConfig
)
