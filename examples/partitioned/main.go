// Partitioned: the paper's §V answer to extreme-scale RDMA clouds. Two
// racks run opposite workloads — rack 0 trains (all elephants), rack 1
// serves RPCs (all mice) — and one Paraleon controller per rack tunes
// its own devices, converging to heterogeneous DCQCN settings that a
// single homogeneous controller could never satisfy simultaneously.
package main

import (
	"fmt"
	"log"

	paraleon "repro"
	"repro/internal/topology"
)

func main() {
	net, err := paraleon.NewNetwork(paraleon.DefaultNetworkConfig())
	if err != nil {
		log.Fatal(err)
	}
	tors := net.Topo.ToRs()
	clusters := [][]topology.NodeID{{tors[0]}, {tors[1]}}

	cfg := paraleon.DefaultSystemConfig()
	cfg.SA = paraleon.ShortSAConfig()
	systems, err := paraleon.AttachPartitioned(net, cfg, clusters)
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range systems {
		s.Start()
	}

	hosts := net.Topo.Hosts()
	// Rack 0 (hosts 0–3): an alltoall training collective.
	if _, err := paraleon.InstallAlltoall(net, paraleon.AlltoallConfig{
		Workers:      hosts[:4],
		MessageBytes: 4 << 20,
		OffTime:      2 * paraleon.Millisecond,
	}); err != nil {
		log.Fatal(err)
	}
	// Rack 1 (hosts 4–7): an all-mice RPC service.
	if _, err := paraleon.InstallPoisson(net, paraleon.PoissonConfig{
		Hosts: hosts[4:],
		CDF:   paraleon.SolarRPC(),
		Load:  0.4,
	}); err != nil {
		log.Fatal(err)
	}

	net.Run(80 * paraleon.Millisecond)

	fmt.Println("partitioned tuning: one controller per rack, 80ms of opposite workloads")
	for i, s := range systems {
		fmt.Printf("cluster %d: triggers=%d sessions=%d dispatches=%d  TP=%.3f RTTnorm=%.3f\n",
			i, s.Controller.Triggers, s.Tuner.Stats().Sessions, s.Dispatches,
			s.LastSample.OTP, s.LastSample.ORTT)
	}
	p0 := net.SwitchParams(tors[0])
	p1 := net.SwitchParams(tors[1])
	fmt.Printf("\nconverged ECN thresholds (heterogeneous by design):\n")
	fmt.Printf("  rack 0 (training): Kmin=%dKB Kmax=%dKB Pmax=%.2f\n", p0.KminBytes>>10, p0.KmaxBytes>>10, p0.PMax)
	fmt.Printf("  rack 1 (RPC):      Kmin=%dKB Kmax=%dKB Pmax=%.2f\n", p1.KminBytes>>10, p1.KmaxBytes>>10, p1.PMax)
	if *p0 == *p1 {
		fmt.Println("  (identical — unexpected for opposite workloads)")
	}
}
