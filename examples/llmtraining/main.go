// LLM training: run the paper's ON/OFF alltoall collective (the
// communication pattern of expert-parallel training) under three DCQCN
// settings — NVIDIA default, the hand-tuned expert setting of Table I,
// and live Paraleon tuning with throughput-leaning utility weights — and
// report per-round collective goodput.
package main

import (
	"fmt"
	"log"

	paraleon "repro"
)

const (
	workers  = 6
	message  = 2 << 20 // bytes per worker pair per round
	offTime  = 3 * paraleon.Millisecond
	horizon  = 150 * paraleon.Millisecond
	maxDrain = 2 * paraleon.Second
)

func run(name string, params paraleon.Params, tuned bool) {
	cfg := paraleon.DefaultNetworkConfig()
	// 4:1 over-subscribe the fabric so the collective actually contends.
	cfg.Clos.FabricLinkBps = cfg.Clos.HostLinkBps
	cfg.Params = params
	net, err := paraleon.NewNetwork(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if tuned {
		sysCfg := paraleon.DefaultSystemConfig()
		sysCfg.Weights = paraleon.ThroughputWeights()
		sys, err := paraleon.Attach(net, sysCfg)
		if err != nil {
			log.Fatal(err)
		}
		sys.Start()
	}
	gen, err := paraleon.InstallAlltoall(net, paraleon.AlltoallConfig{
		Workers:      net.Topo.Hosts()[:workers],
		MessageBytes: message,
		OffTime:      offTime,
	})
	if err != nil {
		log.Fatal(err)
	}
	net.Run(horizon)
	gen.Stop()
	net.RunUntilIdle(maxDrain)

	fmt.Printf("%-10s rounds=%-3d goodput per round (Gbps):", name, gen.RoundsDone)
	var sum float64
	for r := 0; r < gen.RoundsDone; r++ {
		bw := gen.AggregateGoodputBps(r) / 1e9
		sum += bw
		if r < 8 {
			fmt.Printf(" %5.1f", bw)
		}
	}
	if gen.RoundsDone > 0 {
		fmt.Printf("   (mean %.1f)\n", sum/float64(gen.RoundsDone))
	} else {
		fmt.Println()
	}
}

func main() {
	fmt.Printf("llm training: %dx%d alltoall, %d MB per pair per round\n",
		workers, workers, message>>20)
	run("default", paraleon.DefaultParams(), false)
	run("expert", paraleon.ExpertParams(), false)
	run("paraleon", paraleon.DefaultParams(), true)
}
