// Quickstart: build a small CLOS fabric, run the same heavy-tailed
// datacenter workload twice — once with the static NVIDIA default DCQCN
// setting and once with Paraleon tuning live — and compare flow
// completion times.
package main

import (
	"fmt"
	"log"

	paraleon "repro"
)

func run(tuned bool) paraleon.FCTSummary {
	cfg := paraleon.DefaultNetworkConfig()
	net, err := paraleon.NewNetwork(cfg)
	if err != nil {
		log.Fatal(err)
	}

	if tuned {
		sysCfg := paraleon.DefaultSystemConfig()
		// Compress the SA schedule so tuning settles within this short
		// demo run (the Table III schedule assumes sustained traffic).
		sysCfg.SA = paraleon.ShortSAConfig()
		sys, err := paraleon.Attach(net, sysCfg)
		if err != nil {
			log.Fatal(err)
		}
		sys.Start()
	}

	// 120 ms of FB_Hadoop-shaped traffic at 40% load.
	horizon := 120 * paraleon.Millisecond
	if _, err := paraleon.InstallPoisson(net, paraleon.PoissonConfig{
		CDF:      paraleon.FBHadoop(),
		Load:     0.4,
		Duration: horizon,
	}); err != nil {
		log.Fatal(err)
	}

	net.Run(horizon)
	net.RunUntilIdle(horizon * 10) // let the tail drain
	return paraleon.Summarize(net, net.Completed)
}

func main() {
	fmt.Println("paraleon quickstart: FB_Hadoop @ 40% load, default vs tuned")
	static := run(false)
	tuned := run(true)

	fmt.Printf("%-22s %12s %12s\n", "", "default", "paraleon")
	fmt.Printf("%-22s %12d %12d\n", "flows completed", static.Count, tuned.Count)
	fmt.Printf("%-22s %12.2f %12.2f\n", "mean FCT slowdown", static.MeanSlowdown, tuned.MeanSlowdown)
	fmt.Printf("%-22s %12.2f %12.2f\n", "p99 FCT slowdown", static.P99Slowdown, tuned.P99Slowdown)
	fmt.Printf("%-22s %12v %12v\n", "mean FCT", static.MeanFCT, tuned.MeanFCT)
	if tuned.MeanSlowdown < static.MeanSlowdown {
		imp := (1 - tuned.MeanSlowdown/static.MeanSlowdown) * 100
		fmt.Printf("\nparaleon improved mean FCT slowdown by %.1f%%\n", imp)
	}
}
