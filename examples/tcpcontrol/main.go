// TCP control plane: run the full prototype split — a real Paraleon
// controller serving on localhost TCP, and a simulated RDMA cluster whose
// per-ToR agents upload sketch-derived metrics and apply the parameters
// the controller returns — then print the Table IV-style overheads.
//
// This example deliberately reaches below the facade into
// internal/harness, because the testbed driver is part of the
// reproduction harness rather than the library surface.
package main

import (
	"fmt"
	"log"

	paraleon "repro"
	"repro/internal/ctrlrpc"
	"repro/internal/harness"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	// A controller with LLM-style throughput weights.
	serverCfg := ctrlrpc.DefaultServerConfig()
	serverCfg.Weights = paraleon.ThroughputWeights()

	res, err := harness.RunTestbed(harness.TestbedConfig{
		Scale:    harness.QuickScale(),
		Server:   serverCfg,
		Duration: 80 * paraleon.Millisecond,
		Workload: func(n *sim.Network) error {
			_, err := workload.InstallAlltoall(n, workload.AlltoallConfig{
				Workers:      n.Topo.Hosts()[:6],
				MessageBytes: 1 << 20,
				OffTime:      4 * paraleon.Millisecond,
			})
			return err
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	st := res.Server
	fmt.Println("tcp control plane demo (80 ms virtual, controller on TCP loopback)")
	fmt.Printf("  controller ticks:        %d\n", st.Ticks)
	fmt.Printf("  reports received:        %d\n", st.Reports)
	fmt.Printf("  KL triggers:             %d\n", st.Triggers)
	fmt.Printf("  parameter dispatches:    %d\n", st.Dispatches)
	fmt.Printf("  wire: report frame       %d B\n", res.ReportBytes)
	fmt.Printf("  wire: params frame       %d B\n", res.ParamsBytes)
	fmt.Printf("  wire: total in/out       %d / %d B\n", st.BytesIn, st.BytesOut)
	fmt.Printf("  controller compute:      %v total\n", st.Processing)
	if res.TP.Len() > 0 {
		from := 60 * paraleon.Millisecond
		to := 80 * paraleon.Millisecond
		fmt.Printf("  last 20ms means: TP=%.3f RTTnorm=%.3f\n",
			res.TP.MeanOver(from, to), res.RTT.MeanOver(from, to))
	}
}
