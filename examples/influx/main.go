// Influx: reproduce the paper's adaptivity scenario (§IV-B2). An
// alltoall training workload runs as background traffic; 40 ms in, a
// burst of mice-heavy RPC traffic arrives for 30 ms. Watch Paraleon
// detect the flow-size-distribution shift (KL trigger), retune toward
// low delay during the burst, and swing back to throughput afterwards.
package main

import (
	"fmt"
	"log"
	"strings"

	paraleon "repro"
)

const (
	burstAt  = 40 * paraleon.Millisecond
	burstLen = 30 * paraleon.Millisecond
	horizon  = 120 * paraleon.Millisecond
)

// bar renders v in [0,1] as a crude meter.
func bar(v float64) string {
	n := int(v * 30)
	if n < 0 {
		n = 0
	}
	if n > 30 {
		n = 30
	}
	return strings.Repeat("#", n)
}

func main() {
	net, err := paraleon.NewNetwork(paraleon.DefaultNetworkConfig())
	if err != nil {
		log.Fatal(err)
	}
	sysCfg := paraleon.DefaultSystemConfig()
	sysCfg.SA = paraleon.ShortSAConfig() // settle within this short demo
	sys, err := paraleon.Attach(net, sysCfg)
	if err != nil {
		log.Fatal(err)
	}
	sys.Start()

	hosts := net.Topo.Hosts()
	if _, err := paraleon.InstallInflux(net, paraleon.InfluxConfig{
		Background: paraleon.AlltoallConfig{
			Workers:      hosts[:4],
			MessageBytes: 6 << 20,
			OffTime:      2 * paraleon.Millisecond,
		},
		Burst: paraleon.PoissonConfig{
			Hosts:    hosts,
			CDF:      paraleon.SolarRPC(),
			Load:     0.5,
			Start:    burstAt,
			Duration: burstLen,
		},
	}); err != nil {
		log.Fatal(err)
	}

	fmt.Println("t(ms)  phase    RTTnorm  throughput")
	for t := paraleon.Millisecond; t <= horizon; t += paraleon.Millisecond {
		net.Run(t)
		s := sys.LastSample
		phase := "train"
		if t >= burstAt && t < burstAt+burstLen {
			phase = "BURST"
		} else if t >= burstAt+burstLen {
			phase = "after"
		}
		if t%(5*paraleon.Millisecond) == 0 {
			fmt.Printf("%5d  %-7s  %6.3f   %6.3f %s\n",
				int(t.Millis()), phase, s.ORTT, s.OTP, bar(s.OTP))
		}
	}
	fmt.Printf("\nKL triggers: %d, tuning sessions completed: %d, parameter dispatches: %d\n",
		sys.Controller.Triggers, sys.Tuner.Stats().Sessions, sys.Dispatches)
}
