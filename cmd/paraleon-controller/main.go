// Command paraleon-controller runs the centralized Paraleon controller as
// a standalone TCP service. Agents (cmd/paraleon-agent, or the testbed
// harness with -controller) connect to it, upload per-interval metrics,
// and receive DCQCN parameter updates.
//
// Usage:
//
//	paraleon-controller -addr 127.0.0.1:9419
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/ctrlrpc"
	"repro/internal/dispatch"
	"repro/internal/eventsim"
	"repro/internal/telemetry"
	"repro/internal/telemetry/series"
	"repro/internal/tuner"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:9419", "listen address")
	theta := flag.Float64("theta", 0.01, "KL trigger threshold")
	wTP := flag.Float64("w-tp", 0.2, "utility weight for throughput")
	wRTT := flag.Float64("w-rtt", 0.5, "utility weight for RTT")
	wPFC := flag.Float64("w-pfc", 0.3, "utility weight for PFC")
	seed := flag.Int64("seed", 1, "tuner randomness seed")
	tunerName := flag.String("tuner", "", "tuning strategy: sa | bandit | multiecn (default sa)")
	statsEvery := flag.Duration("stats-every", 10*time.Second, "stats print period (0 disables)")
	telemetryAddr := flag.String("telemetry-addr", "", "serve /metrics, /debug/status and /debug/pprof on this address")
	ioTimeout := flag.Duration("io-timeout", 0, "per-frame read/write deadline on agent connections (0 disables)")
	walPath := flag.String("wal", "", "write-ahead log file; a restarted controller resumes the last dispatched vector and epoch from it")
	maxRelStep := flag.Float64("max-rel-step", 0, "guardrail: max per-parameter relative step per dispatch (0 disables)")
	minGap := flag.Duration("min-gap", 0, "guardrail: minimum time between admitted dispatches (0 disables)")
	blackbox := flag.String("blackbox", "", "flight-recorder artifact written on shutdown (read with paraleon-analyze)")
	flag.Parse()

	var telemetrySrv *telemetry.HTTPServer
	if *telemetryAddr != "" {
		tsrv, err := telemetry.Serve(nil, *telemetryAddr, telemetry.Default())
		if err != nil {
			log.Fatalf("telemetry: %v", err)
		}
		telemetrySrv = tsrv
		fmt.Fprintf(os.Stderr, "telemetry: serving http://%s/metrics\n", tsrv.Addr())
	}

	cfg := ctrlrpc.DefaultServerConfig()
	cfg.Theta = *theta
	cfg.Weights.TP, cfg.Weights.RTT, cfg.Weights.PFC = *wTP, *wRTT, *wPFC
	cfg.Seed = *seed
	if *tunerName != "" {
		known := false
		for _, n := range tuner.Names() {
			known = known || n == *tunerName
		}
		if !known {
			log.Fatalf("-tuner: unknown strategy %q (have %v)", *tunerName, tuner.Names())
		}
		cfg.Tuner = *tunerName
	}
	cfg.Logger = log.New(os.Stderr, "controller: ", log.LstdFlags)
	cfg.ReadTimeout = *ioTimeout
	cfg.WriteTimeout = *ioTimeout
	cfg.Guard.MaxRelStep = *maxRelStep
	cfg.Guard.MinGap = eventsim.Time(minGap.Nanoseconds())
	if err := cfg.Weights.Validate(); err != nil {
		log.Fatalf("bad weights: %v", err)
	}
	if *walPath != "" {
		wal, err := dispatch.OpenFileWAL(*walPath)
		if err != nil {
			log.Fatalf("wal: %v", err)
		}
		defer wal.Close()
		cfg.WAL = wal
	}
	var flight *series.Recorder
	if *blackbox != "" {
		flight = series.NewRecorder(series.Meta{
			Experiment: "controller",
			Seed:       *seed,
		})
		cfg.Flight = flight
	}

	srv, err := ctrlrpc.Serve(*addr, cfg)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	fmt.Printf("paraleon controller listening on %s (theta=%.3g weights=%.2f/%.2f/%.2f)\n",
		srv.Addr(), *theta, *wTP, *wRTT, *wPFC)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)

	var ticker *time.Ticker
	var tick <-chan time.Time
	if *statsEvery > 0 {
		ticker = time.NewTicker(*statsEvery)
		tick = ticker.C
		defer ticker.Stop()
	}
	for {
		select {
		case <-tick:
			st := srv.Stats()
			fmt.Printf("stats: reports=%d ticks=%d triggers=%d dispatches=%d rejects=%d epoch=%d acks=%d in=%dB out=%dB cpu=%v\n",
				st.Reports, st.Ticks, st.Triggers, st.Dispatches, st.Rejects, srv.Epoch(), st.ApplyAcks,
				st.BytesIn, st.BytesOut, st.Processing.Round(time.Microsecond))
		case <-stop:
			st := srv.Stats()
			fmt.Printf("\nfinal: reports=%d ticks=%d triggers=%d dispatches=%d rejects=%d epoch=%d acks=%d in=%dB out=%dB cpu=%v\n",
				st.Reports, st.Ticks, st.Triggers, st.Dispatches, st.Rejects, srv.Epoch(), st.ApplyAcks,
				st.BytesIn, st.BytesOut, st.Processing.Round(time.Microsecond))
			srv.Close()
			if flight != nil {
				// The daemon has no virtual clock; the artifact's time
				// axis is the tick index, so EndT is the final tick.
				f, err := os.Create(*blackbox)
				if err != nil {
					log.Printf("blackbox: %v", err)
				} else {
					if err := flight.WriteArtifact(f, st.Ticks, telemetry.Default()); err != nil {
						log.Printf("blackbox: %v", err)
					}
					f.Close()
					fmt.Printf("blackbox: wrote %s\n", *blackbox)
				}
			}
			if telemetrySrv != nil {
				shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
				telemetrySrv.Shutdown(shutCtx)
				cancel()
			}
			return
		}
	}
}
