// Command paraleon-agent drives a simulated RDMA cluster whose monitoring
// agents report to an external controller (cmd/paraleon-controller) over
// real TCP — the two binaries together mirror the paper's prototype
// deployment.
//
// Usage (two terminals):
//
//	paraleon-controller -addr 127.0.0.1:9419
//	paraleon-agent -controller 127.0.0.1:9419 -duration 100ms -load 0.4
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/ctrlrpc"
	"repro/internal/eventsim"
	"repro/internal/harness"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

func main() {
	controller := flag.String("controller", "127.0.0.1:9419", "controller address")
	duration := flag.Duration("duration", 100*time.Millisecond, "virtual run length")
	load := flag.Float64("load", 0.4, "FB_Hadoop offered load")
	scaleName := flag.String("scale", "quick", "fabric scale: quick | medium | paper")
	telemetryAddr := flag.String("telemetry-addr", "", "serve /metrics, /debug/status and /debug/pprof on this address")
	report := flag.Bool("report", false, "print a telemetry run summary after the run")
	flag.Parse()

	var telemetrySrv *telemetry.HTTPServer
	if *telemetryAddr != "" {
		srv, err := telemetry.Serve(nil, *telemetryAddr, telemetry.Default())
		if err != nil {
			log.Fatalf("telemetry: %v", err)
		}
		telemetrySrv = srv
		fmt.Fprintf(os.Stderr, "telemetry: serving http://%s/metrics\n", srv.Addr())
	}

	var scale harness.Scale
	switch *scaleName {
	case "quick":
		scale = harness.QuickScale()
	case "medium":
		scale = harness.MediumScale()
	case "paper":
		scale = harness.PaperScale()
	default:
		log.Fatalf("unknown scale %q", *scaleName)
	}

	res, err := harness.RunTestbed(harness.TestbedConfig{
		Scale:          scale,
		Server:         ctrlrpc.DefaultServerConfig(), // ignored with ControllerAddr
		ControllerAddr: *controller,
		Duration:       eventsim.Time(duration.Nanoseconds()),
		DrainAfter:     true,
		Workload: func(n *sim.Network) error {
			_, err := workload.InstallPoisson(n, workload.PoissonConfig{
				CDF:      workload.FBHadoop(),
				Load:     *load,
				Duration: eventsim.Time(duration.Nanoseconds()),
			})
			return err
		},
	})
	if err != nil {
		log.Fatalf("run: %v", err)
	}

	sum := res.Net.Completed
	fmt.Printf("ran %v of virtual time against controller %s\n", *duration, *controller)
	fmt.Printf("  flows completed:       %d\n", len(sum))
	fmt.Printf("  parameter dispatches:  %d\n", res.Dispatches)
	fmt.Printf("  report frame size:     %d B\n", res.ReportBytes)
	fmt.Printf("  params frame size:     %d B\n", res.ParamsBytes)
	fmt.Printf("  agent bytes uploaded:  %d B\n", res.AgentBytesOut)
	if res.TP.Len() > 0 {
		fmt.Printf("  final interval: TP=%.3f RTTnorm=%.3f\n",
			res.TP.Values[res.TP.Len()-1], res.RTT.Values[res.RTT.Len()-1])
	}
	if *report {
		telemetry.Default().BuildReport().Fprint(os.Stdout)
	}
	if telemetrySrv != nil {
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		telemetrySrv.Shutdown(shutCtx)
	}
}
