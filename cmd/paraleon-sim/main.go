// Command paraleon-sim regenerates the paper's tables and figures from
// the simulation harness.
//
// Usage:
//
//	paraleon-sim -exp table2          # one experiment
//	paraleon-sim -exp all             # everything (minutes)
//	paraleon-sim -exp fig7fb -scale medium -horizon 80ms
//	paraleon-sim -exp fig10 -workers 8 -progress
//	paraleon-sim -list
//
// Experiment arms (scheme × workload × setting combinations) are
// independent simulations; -workers spreads them over a worker pool
// (default: all CPUs). Results are bit-identical at any worker count.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/eventsim"
	"repro/internal/harness"
	"repro/internal/telemetry"
	"repro/internal/tuner"
)

type experiment struct {
	name string
	desc string
	run  func(scale harness.Scale, horizon eventsim.Time) error
}

// csvDir, when set via -csv, makes timeline/CDF experiments also write
// machine-readable series next to their printed tables.
var csvDir string

// chaosSeed drives the chaos-* experiments' fault scenarios; chaosTrace,
// when set via -chaos-trace, receives their JSON Lines event trace;
// blackboxPath, when set via -blackbox, receives their flight-recorder
// artifact. scaleLabel names the -scale choice for artifact meta.
var (
	chaosSeed    int64
	chaosTrace   string
	blackboxPath string
	scaleLabel   string
)

// chaosTraceWriter opens the -chaos-trace destination, or returns a nil
// writer when tracing is off.
func chaosTraceWriter() (io.Writer, func() error, error) {
	return optionalFile(chaosTrace)
}

// blackboxWriter opens the -blackbox destination, or returns a nil
// writer when the flight recorder is off.
func blackboxWriter() (io.Writer, func() error, error) {
	return optionalFile(blackboxPath)
}

func optionalFile(path string) (io.Writer, func() error, error) {
	if path == "" {
		return nil, func() error { return nil }, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	return f, f.Close, nil
}

func experiments() []experiment {
	out := os.Stdout
	return []experiment{
		{"table2", "alltoall bandwidth: default vs expert (Table II)", func(s harness.Scale, _ eventsim.Time) error {
			r, err := harness.Table2(s, 6, []int{1, 2, 4, 8})
			if err != nil {
				return err
			}
			r.Fprint(out)
			return nil
		}},
		{"fig5", "single-parameter impacts (Fig 5)", func(s harness.Scale, h eventsim.Time) error {
			r, err := harness.Fig5(s, h)
			if err != nil {
				return err
			}
			r.Fprint(out)
			return nil
		}},
		{"fig6", "inter-parameter impacts (Fig 6)", func(s harness.Scale, h eventsim.Time) error {
			r, err := harness.Fig6(s, h)
			if err != nil {
				return err
			}
			r.Fprint(out)
			return nil
		}},
		{"fig7fb", "FB_Hadoop FCT slowdowns, 5 schemes (Fig 7a,b)", func(s harness.Scale, h eventsim.Time) error {
			r, err := harness.Fig7FB(s, harness.AllSchemes(), 0.3, h)
			if err != nil {
				return err
			}
			r.Fprint(out)
			return nil
		}},
		{"fig7llm", "LLM training FCT tails (Fig 7c,d)", func(s harness.Scale, _ eventsim.Time) error {
			r, err := harness.Fig7LLM(s, harness.AllSchemes(), []int{4, 6}, 1<<20, 4)
			if err != nil {
				return err
			}
			r.Fprint(out)
			if csvDir != "" {
				return r.WriteCDFCSVs(csvDir, "fig7llm")
			}
			return nil
		}},
		{"fig8", "workload influx timeline, 5 schemes (Fig 8)", func(s harness.Scale, _ eventsim.Time) error {
			r, err := harness.RunInflux(s, harness.AllSchemes(), harness.DefaultInfluxSpec())
			if err != nil {
				return err
			}
			r.Fprint(out)
			if csvDir != "" {
				return r.WriteCSVs(csvDir, "fig8")
			}
			return nil
		}},
		{"fig9", "pretrained statics vs adaptive Paraleon (Fig 9)", func(s harness.Scale, _ eventsim.Time) error {
			spec := harness.DefaultInfluxSpec()
			p1, p2, err := harness.PretrainedSchemes(s, spec)
			if err != nil {
				return err
			}
			r, err := harness.RunInflux(s, []harness.Scheme{p1, p2, harness.ParaleonScheme()}, spec)
			if err != nil {
				return err
			}
			r.Fprint(out)
			if csvDir != "" {
				return r.WriteCSVs(csvDir, "fig9")
			}
			return nil
		}},
		{"fig10", "monitoring designs: accuracy & FCT (Fig 10)", func(s harness.Scale, h eventsim.Time) error {
			r, err := harness.Fig10(s, []float64{0.3, 0.5, 0.7}, h)
			if err != nil {
				return err
			}
			r.Fprint(out)
			return nil
		}},
		{"fig11", "monitor-interval sweep (Fig 11)", func(s harness.Scale, h eventsim.Time) error {
			r, err := harness.Fig11(s, []float64{1, 2, 4, 8}, 0.3, h)
			if err != nil {
				return err
			}
			r.Fprint(out)
			return nil
		}},
		{"fig12", "SA convergence: guided+relaxed vs naive (Fig 12)", func(s harness.Scale, h eventsim.Time) error {
			horizon := h
			if horizon < 350*eventsim.Millisecond {
				// Long enough for the Table III session (~280 intervals)
				// to complete.
				horizon = 350 * eventsim.Millisecond
			}
			r, err := harness.Fig12(s, horizon)
			if err != nil {
				return err
			}
			r.Fprint(out)
			return nil
		}},
		{"fig13", "testbed-mode alltoall bandwidth (Fig 13)", func(s harness.Scale, _ eventsim.Time) error {
			r, err := harness.Fig13(s, []int{4, 6, 8}, 1<<20, 100*eventsim.Millisecond)
			if err != nil {
				return err
			}
			r.Fprint(out)
			return nil
		}},
		{"fig14", "testbed-mode influx with SolarRPC (Fig 14)", func(s harness.Scale, _ eventsim.Time) error {
			r, err := harness.Fig14(s, harness.TestbedInfluxSpec())
			if err != nil {
				return err
			}
			r.Fprint(out)
			if csvDir != "" {
				return r.WriteCSVs(csvDir, "fig14")
			}
			return nil
		}},
		{"table4", "control-plane overheads (Table IV)", func(s harness.Scale, h eventsim.Time) error {
			r, err := harness.Table4(s, h)
			if err != nil {
				return err
			}
			r.Fprint(out)
			return nil
		}},
		{"chaos-linkflap", "fabric uplink flaps; utility regression rolls parameters back", func(s harness.Scale, h eventsim.Time) error {
			w, closeTrace, err := chaosTraceWriter()
			if err != nil {
				return err
			}
			bb, closeBB, err := blackboxWriter()
			if err != nil {
				return err
			}
			cfg := harness.ChaosLinkFlapConfig(s, h, chaosSeed, w)
			cfg.Blackbox, cfg.ScaleLabel = bb, scaleLabel
			r, err := harness.RunChaos(cfg)
			if err != nil {
				return err
			}
			r.Fprint(out)
			if err := closeTrace(); err != nil {
				return err
			}
			return closeBB()
		}},
		{"chaos-agentcrash", "agent crash+restart; quorum freeze spans the outage", func(s harness.Scale, h eventsim.Time) error {
			w, closeTrace, err := chaosTraceWriter()
			if err != nil {
				return err
			}
			bb, closeBB, err := blackboxWriter()
			if err != nil {
				return err
			}
			cfg := harness.ChaosAgentCrashConfig(s, h, chaosSeed, w)
			cfg.Blackbox, cfg.ScaleLabel = bb, scaleLabel
			r, err := harness.RunChaos(cfg)
			if err != nil {
				return err
			}
			r.Fprint(out)
			if err := closeTrace(); err != nil {
				return err
			}
			return closeBB()
		}},
		{"chaos-ctrlpartition", "TCP control plane under frame faults + controller restart", func(s harness.Scale, h eventsim.Time) error {
			r, err := harness.ChaosCtrlPartition(s, h, chaosSeed)
			if err != nil {
				return err
			}
			r.Fprint(out)
			return nil
		}},
		{"chaos-dispatch", "controller killed mid-canary; WAL replay converges the fabric to one epoch", func(s harness.Scale, h eventsim.Time) error {
			w, closeTrace, err := chaosTraceWriter()
			if err != nil {
				return err
			}
			bb, closeBB, err := blackboxWriter()
			if err != nil {
				return err
			}
			r, err := harness.ChaosDispatchCrashBlackbox(s, h, chaosSeed, w, bb)
			if err != nil {
				return err
			}
			r.Fprint(out)
			if err := closeTrace(); err != nil {
				return err
			}
			return closeBB()
		}},
		{"tuner-shootout", "every tuning strategy raced across alltoall, incast, and chaos-linkflap", func(s harness.Scale, h eventsim.Time) error {
			r, err := harness.TunerShootout(s, h, chaosSeed)
			if err != nil {
				return err
			}
			r.Fprint(out)
			return nil
		}},
	}
}

// validateFlags rejects meaningless flag combinations up front, before
// any experiment spends minutes of compute. set holds the names of flags
// the user passed explicitly.
func validateFlags(exp string, workers int, horizon time.Duration, set map[string]bool) error {
	if workers < 0 {
		return fmt.Errorf("-workers must be >= 0 (0 = all CPUs), got %d", workers)
	}
	if horizon <= 0 {
		return fmt.Errorf("-horizon must be positive, got %v", horizon)
	}
	if set["telemetry-hold"] && !set["telemetry-addr"] {
		return fmt.Errorf("-telemetry-hold requires -telemetry-addr (nothing would serve the held endpoints)")
	}
	if exp == "" {
		return nil // listing mode; experiment-specific flags are moot
	}
	isChaos := strings.HasPrefix(exp, "chaos-")
	if set["chaos-trace"] && exp == "all" {
		return fmt.Errorf("-chaos-trace cannot be combined with -exp all: each chaos experiment would overwrite the trace file; pick one chaos-* experiment")
	}
	if set["blackbox"] && exp == "all" {
		return fmt.Errorf("-blackbox cannot be combined with -exp all: each chaos experiment would overwrite the artifact; pick one chaos-* experiment")
	}
	if set["blackbox"] && (!isChaos || exp == "chaos-ctrlpartition") {
		return fmt.Errorf("-blackbox only applies to the in-simulation chaos-* experiments (chaos-linkflap, chaos-agentcrash, chaos-dispatch), not %q", exp)
	}
	// tuner-shootout embeds the chaos-linkflap scenario, so it accepts a
	// scenario seed too (but not a trace destination).
	if set["chaos-seed"] && exp != "all" && !isChaos && exp != "tuner-shootout" {
		return fmt.Errorf("-chaos-seed only applies to chaos-* experiments and tuner-shootout, not %q", exp)
	}
	if set["chaos-trace"] && exp != "all" && !isChaos {
		return fmt.Errorf("-chaos-trace only applies to chaos-* experiments, not %q", exp)
	}
	if set["tuner"] && exp == "tuner-shootout" {
		return fmt.Errorf("-tuner does not apply to tuner-shootout: it always races every registered strategy")
	}
	return nil
}

func main() {
	exp := flag.String("exp", "", "experiment to run (see -list), or 'all'")
	scaleName := flag.String("scale", "quick", "fabric scale: quick | medium | paper")
	horizon := flag.Duration("horizon", 40*time.Millisecond, "measurement horizon (virtual time)")
	list := flag.Bool("list", false, "list experiments and exit")
	csv := flag.String("csv", "", "directory for CSV series output (timeline/CDF experiments)")
	workers := flag.Int("workers", 0, "experiment arms run in parallel (0 = all CPUs, 1 = sequential)")
	progress := flag.Bool("progress", false, "print per-arm completion progress to stderr")
	shards := flag.Int("shards", 0, "run the fabric sharded across this many engines (0 = single-engine; clamped to the ToR count)")
	tunerName := flag.String("tuner", "", "tuning strategy for Paraleon arms: "+strings.Join(tuner.Names(), " | ")+" (default sa)")
	seed := flag.Int64("chaos-seed", 1, "fault scenario seed for chaos-* experiments")
	ctrace := flag.String("chaos-trace", "", "file for the chaos experiments' JSONL event trace")
	blackbox := flag.String("blackbox", "", "file for the chaos experiments' flight-recorder artifact (read with paraleon-analyze)")
	telemetryAddr := flag.String("telemetry-addr", "", "serve /metrics, /debug/status and /debug/pprof on this address (e.g. 127.0.0.1:9100)")
	telemetryHold := flag.Duration("telemetry-hold", 0, "keep the telemetry server up this long after experiments finish (requires -telemetry-addr)")
	report := flag.Bool("report", false, "print a telemetry run summary after experiments finish")
	flag.Parse()
	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if err := validateFlags(*exp, *workers, *horizon, set); err != nil {
		fmt.Fprintf(os.Stderr, "paraleon-sim: %v\n", err)
		os.Exit(2)
	}
	if *tunerName != "" {
		known := false
		for _, n := range tuner.Names() {
			known = known || n == *tunerName
		}
		if !known {
			fmt.Fprintf(os.Stderr, "paraleon-sim: -tuner: unknown strategy %q (have %s)\n",
				*tunerName, strings.Join(tuner.Names(), ", "))
			os.Exit(2)
		}
	}
	csvDir = *csv
	chaosSeed = *seed
	chaosTrace = *ctrace
	blackboxPath = *blackbox
	scaleLabel = *scaleName

	var telemetrySrv *telemetry.HTTPServer
	if *telemetryAddr != "" {
		srv, err := telemetry.Serve(nil, *telemetryAddr, telemetry.Default())
		if err != nil {
			fmt.Fprintf(os.Stderr, "paraleon-sim: telemetry: %v\n", err)
			os.Exit(1)
		}
		telemetrySrv = srv
		fmt.Fprintf(os.Stderr, "telemetry: serving http://%s/metrics\n", srv.Addr())
	}
	// finish runs after the experiments on every successful path: emit
	// the -report summary, then hold the telemetry endpoints up for
	// scrapers before shutting down.
	finish := func() {
		if *report {
			telemetry.Default().BuildReport().Fprint(os.Stdout)
		}
		if telemetrySrv != nil {
			if *telemetryHold > 0 {
				fmt.Fprintf(os.Stderr, "telemetry: holding endpoints for %v\n", *telemetryHold)
				time.Sleep(*telemetryHold)
			}
			shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			telemetrySrv.Shutdown(shutCtx)
		}
	}

	exps := experiments()
	if *list || *exp == "" {
		fmt.Println("experiments:")
		names := make([]string, 0, len(exps))
		byName := map[string]experiment{}
		for _, e := range exps {
			names = append(names, e.name)
			byName[e.name] = e
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Printf("  %-10s %s\n", n, byName[n].desc)
		}
		if *exp == "" && !*list {
			os.Exit(2)
		}
		return
	}

	var scale harness.Scale
	switch *scaleName {
	case "quick":
		scale = harness.QuickScale()
	case "medium":
		scale = harness.MediumScale()
	case "paper":
		scale = harness.PaperScale()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scaleName)
		os.Exit(2)
	}
	scale.Workers = *workers
	scale.Net.Shards = *shards
	scale.Net.Tuner = *tunerName
	if *progress {
		scale.Progress = func(st harness.ArmStatus) {
			status := "ok"
			if st.Err != nil {
				status = "FAILED"
			}
			fmt.Fprintf(os.Stderr, "  arm %d/%d (%s) %s in %v\n",
				st.Done, st.Total, st.Scheme, status, st.Wall.Round(time.Millisecond))
		}
	}
	h := eventsim.Time(horizon.Nanoseconds())

	run := func(e experiment) {
		fmt.Printf("== %s: %s (scale=%s)\n", e.name, e.desc, *scaleName)
		start := time.Now()
		if err := e.run(scale, h); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.name, err)
			os.Exit(1)
		}
		fmt.Printf("-- %s done in %v\n\n", e.name, time.Since(start).Round(time.Millisecond))
	}

	if *exp == "all" {
		for _, e := range exps {
			run(e)
		}
		finish()
		return
	}
	for _, e := range exps {
		if e.name == *exp {
			run(e)
			finish()
			return
		}
	}
	fmt.Fprintf(os.Stderr, "unknown experiment %q (try -list)\n", *exp)
	os.Exit(2)
}
