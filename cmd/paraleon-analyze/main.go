// Command paraleon-analyze inspects flight-recorder black-box
// artifacts written by paraleon-sim -blackbox, paraleon-controller
// -blackbox, or the harness.
//
// Usage:
//
//	paraleon-analyze summary RUN.json          # percentiles + sparklines
//	paraleon-analyze diff [-tol 0.1] A.json B.json
//
// summary renders the run's anomaly timeline, every recorded series
// with min/mean/max/p50/p95/p99 and an ASCII sparkline, and the
// embedded histogram quantiles.
//
// diff compares two runs (two seeds, two tuners, before/after a code
// change) signal by signal and ends with a machine-checkable verdict
// line; the exit status is 1 when any judged signal regressed, so CI
// can gate on it directly.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/telemetry/series"
)

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  paraleon-analyze summary RUN.json
  paraleon-analyze diff [-tol FRAC] A.json B.json
`)
	os.Exit(2)
}

func load(path string) *series.Artifact {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "paraleon-analyze: %v\n", err)
		os.Exit(2)
	}
	defer f.Close()
	a, err := series.Load(f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "paraleon-analyze: %s: %v\n", path, err)
		os.Exit(2)
	}
	return a
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "summary":
		fs := flag.NewFlagSet("summary", flag.ExitOnError)
		fs.Parse(os.Args[2:])
		if fs.NArg() != 1 {
			usage()
		}
		series.WriteSummary(os.Stdout, load(fs.Arg(0)))
	case "diff":
		fs := flag.NewFlagSet("diff", flag.ExitOnError)
		tol := fs.Float64("tol", 0.1, "relative tolerance before a judged signal counts as a regression")
		fs.Parse(os.Args[2:])
		if fs.NArg() != 2 {
			usage()
		}
		a, b := load(fs.Arg(0)), load(fs.Arg(1))
		d := series.Diff(a, b, *tol)
		series.WriteDiff(os.Stdout, a, b, d)
		if !d.Clean() {
			os.Exit(1)
		}
	default:
		usage()
	}
}
