#!/usr/bin/env python3
"""Convert `go test -bench` output to JSON and enforce the perf gate.

Usage: benchjson.py BENCH_OUTPUT.txt BENCH.json

Parses every benchmark result line into {name, iterations, metrics{unit:
value}} and writes the collection as JSON. Exits non-zero when:

  * no benchmark lines were found (the bench run silently did nothing), or
  * any benchmark in ZERO_ALLOC reports a non-zero allocs/op — these pin
    the zero-allocation hot path (pooled event engine, packet free-lists,
    sketch fast hashing) and a regression here is a build breaker.
"""

import json
import re
import sys

# Benchmarks whose steady state must not allocate. Substring match against
# the benchmark name (which may carry a -<GOMAXPROCS> suffix).
ZERO_ALLOC = [
    "BenchmarkSchedule/",      # never emitted; placeholder for subbenches
    "BenchmarkSchedule-",
    "BenchmarkSchedule ",
    "BenchmarkSketchInsert",
    "BenchmarkPortForward",
]

LINE = re.compile(r"^(Benchmark\S+)\s+(\d+)\s+(.*)$")
METRIC = re.compile(r"([-+0-9.eE]+)\s+(\S+)")


def parse(path):
    results = []
    with open(path) as f:
        for line in f:
            m = LINE.match(line.strip())
            if not m:
                continue
            name, iters, rest = m.group(1), int(m.group(2)), m.group(3)
            metrics = {}
            for mm in METRIC.finditer(rest):
                try:
                    metrics[mm.group(2)] = float(mm.group(1))
                except ValueError:
                    continue
            results.append({"name": name, "iterations": iters, "metrics": metrics})
    return results


def main():
    if len(sys.argv) != 3:
        sys.exit(__doc__)
    src, dst = sys.argv[1], sys.argv[2]
    results = parse(src)
    if not results:
        sys.exit("benchjson: no benchmark result lines in %s" % src)

    failures = []
    for r in results:
        padded = r["name"] + " "
        gated = any(z in padded for z in ZERO_ALLOC)
        allocs = r["metrics"].get("allocs/op")
        if gated and allocs is not None and allocs != 0:
            failures.append("%s: %g allocs/op, want 0" % (r["name"], allocs))

    with open(dst, "w") as f:
        json.dump({"benchmarks": results}, f, indent=2, sort_keys=True)
        f.write("\n")
    print("benchjson: wrote %d results to %s" % (len(results), dst))

    if failures:
        sys.exit("perf gate failed:\n  " + "\n  ".join(failures))


if __name__ == "__main__":
    main()
