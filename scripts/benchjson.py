#!/usr/bin/env python3
"""Convert `go test -bench` output to JSON and enforce the perf gate.

Usage: benchjson.py [--require NAME[,NAME...]] BENCH_OUTPUT.txt BENCH.json
       benchjson.py --merge BENCH_trajectory.json BENCH_pr*.json
       benchjson.py --gate [--tol FRAC] BENCH_current.json BENCH_trajectory.json

Parses every benchmark result line into {name, iterations, metrics{unit:
value}} and writes the collection as JSON. The output path is free-form,
so independent gates can publish side by side (BENCH_pr5.json,
BENCH_pr6.json, ...) without clobbering each other. Exits non-zero when:

  * no benchmark lines were found (the bench run silently did nothing), or
  * any --require name has no matching result — a renamed or deleted
    benchmark must fail the gate loudly, not publish a JSON that silently
    stopped covering it, or
  * any benchmark in ZERO_ALLOC reports a non-zero allocs/op — these pin
    the zero-allocation hot path (pooled event engine, packet free-lists,
    sketch fast hashing) and a regression here is a build breaker, or
  * any RATIO_GATES pair present in the results violates its bound —
    same-run A/B arms (timing wheel vs heap-only) whose ratio is the
    PR's headline claim.

--require names are substring matches against the result names (which may
carry a -<GOMAXPROCS> suffix), so "BenchmarkShardedThroughput" covers its
sub-benchmarks too.

--merge folds the per-PR gate files into one trajectory document keyed by
benchmark name: {benchmarks: {name: [{source, iterations, metrics}, ...]}},
inputs ordered by the numeric PR suffix when present (BENCH_pr5 before
BENCH_pr10) so each list reads as the metric's history across the stack.
Exits non-zero when an input is missing, unparsable, or empty.

--gate compares a current gate file against the merged trajectory: for
every benchmark name present in both, each directional metric (ns/op and
ns/event lower-better, events/sec higher-better, ...) is checked against
the BEST value any *prior* PR recorded (entries whose source label
matches the current file are skipped, since the trajectory is merged
before gating). A metric more than --tol (default 0.10, i.e. 10%) worse
than the historical best fails the gate: the perf trajectory across the
PR stack must never quietly slide backwards. Names with no prior entry
pass — a new benchmark founds its own trajectory.
"""

import json
import re
import sys

# Benchmarks whose steady state must not allocate. Substring match against
# the benchmark name (which may carry a -<GOMAXPROCS> suffix).
ZERO_ALLOC = [
    "BenchmarkSchedule/",      # never emitted; placeholder for subbenches
    "BenchmarkSchedule-",
    "BenchmarkSchedule ",
    "BenchmarkSketchInsert",
    "BenchmarkPortForward",
    "BenchmarkDispatchPlan",
    "BenchmarkTunerStep",
    "BenchmarkTimerWheel",
]

# Same-run A/B ratio bounds: (numerator name, denominator name, metric,
# max ratio). Names match exactly or with a -<GOMAXPROCS> suffix, and
# the bound is enforced only when exactly one result matches each side —
# a bench run that includes only one arm is not gated. The timer-wheel
# bound is the PR's acceptance criterion: wheel-path ns/event must be at
# least 25% below the heap-only arm measured in the same run.
RATIO_GATES = [
    ("BenchmarkEngineThroughputTimerHeavy/wheel",
     "BenchmarkEngineThroughputTimerHeavy/heap", "ns/event", 0.75),
]

# Directional metrics for the --gate trajectory comparison. Anything not
# listed (experiment-specific readings like accuracies or GB/s tables) is
# informational only: those vary with scenario tuning, not code speed.
LOWER_BETTER = {"ns/op", "ns/event", "allocs/op", "B/op"}
HIGHER_BETTER = {"events/sec"}

# Additive slack for metrics whose baseline can be a handful of counts:
# 2 vs 4 allocs/op is testing-harness jitter, not a leak — a real alloc
# regression shows up orders of magnitude above this. The ZERO_ALLOC
# list, which demands exactly 0, is unaffected.
GATE_SLACK = {"allocs/op": 4.0, "B/op": 256.0}

LINE = re.compile(r"^(Benchmark\S+)\s+(\d+)\s+(.*)$")
METRIC = re.compile(r"([-+0-9.eE]+)\s+(\S+)")


def parse(path):
    results = []
    with open(path) as f:
        for line in f:
            m = LINE.match(line.strip())
            if not m:
                continue
            name, iters, rest = m.group(1), int(m.group(2)), m.group(3)
            metrics = {}
            for mm in METRIC.finditer(rest):
                try:
                    metrics[mm.group(2)] = float(mm.group(1))
                except ValueError:
                    continue
            results.append({"name": name, "iterations": iters, "metrics": metrics})
    return results


def source_key(path):
    """Sort key: numeric PR suffix when present, else lexical.

    BENCH_pr5.json sorts before BENCH_pr10.json; files without the
    suffix sort after the numbered ones, lexically.
    """
    m = re.search(r"pr(\d+)", path)
    if m:
        return (0, int(m.group(1)), path)
    return (1, 0, path)


def merge(dst, srcs):
    if not srcs:
        sys.exit("benchjson: --merge needs at least one input file")
    trajectory = {}
    for src in sorted(srcs, key=source_key):
        try:
            with open(src) as f:
                doc = json.load(f)
        except (OSError, ValueError) as e:
            sys.exit("benchjson: --merge: %s: %s" % (src, e))
        results = doc.get("benchmarks")
        if not isinstance(results, list) or not results:
            sys.exit("benchjson: --merge: %s has no benchmarks" % src)
        label = re.sub(r"^BENCH_|\.json$", "", src.rsplit("/", 1)[-1])
        for r in results:
            trajectory.setdefault(r["name"], []).append({
                "source": label,
                "iterations": r.get("iterations"),
                "metrics": r.get("metrics", {}),
            })
    with open(dst, "w") as f:
        json.dump({"benchmarks": trajectory}, f, indent=2, sort_keys=True)
        f.write("\n")
    print("benchjson: merged %d files (%d benchmark names) into %s"
          % (len(srcs), len(trajectory), dst))


def ratio_failures(results):
    """Check every RATIO_GATES pair that is fully present in results."""
    def matches(name, pat):
        return name == pat or name.startswith(pat + "-")
    failures = []
    for num_pat, den_pat, metric, bound in RATIO_GATES:
        nums = [r for r in results if matches(r["name"], num_pat)]
        dens = [r for r in results if matches(r["name"], den_pat)]
        if len(nums) != 1 or len(dens) != 1:
            continue
        num = nums[0]["metrics"].get(metric)
        den = dens[0]["metrics"].get(metric)
        if num is None or den is None or den == 0:
            continue
        ratio = num / den
        if ratio > bound:
            failures.append(
                "%s %s = %g vs %s = %g: ratio %.3f exceeds %.2f"
                % (nums[0]["name"], metric, num, dens[0]["name"], den,
                   ratio, bound))
    return failures


def gate(current_path, trajectory_path, tol):
    try:
        with open(current_path) as f:
            current = json.load(f)
        with open(trajectory_path) as f:
            trajectory = json.load(f)
    except (OSError, ValueError) as e:
        sys.exit("benchjson: --gate: %s" % e)
    results = current.get("benchmarks")
    if not isinstance(results, list) or not results:
        sys.exit("benchjson: --gate: %s has no benchmarks" % current_path)
    history = trajectory.get("benchmarks")
    if not isinstance(history, dict) or not history:
        sys.exit("benchjson: --gate: %s has no trajectory" % trajectory_path)

    own = re.sub(r"^BENCH_|\.json$", "", current_path.rsplit("/", 1)[-1])
    failures, checked = [], 0
    for r in results:
        prior = [e for e in history.get(r["name"], [])
                 if e.get("source") != own]
        if not prior:
            continue
        for metric, value in sorted(r["metrics"].items()):
            lower = metric in LOWER_BETTER
            if not lower and metric not in HIGHER_BETTER:
                continue
            vals = [e["metrics"][metric] for e in prior
                    if metric in e.get("metrics", {})]
            if not vals:
                continue
            best = min(vals) if lower else max(vals)
            checked += 1
            if lower and value > best * (1 + tol) + GATE_SLACK.get(metric, 0):
                failures.append("%s %s = %g, best prior %g (+%.1f%% > tol %.0f%%)"
                                % (r["name"], metric, value, best,
                                   100 * (value / best - 1), 100 * tol))
            elif not lower and best > 0 and value < best * (1 - tol):
                failures.append("%s %s = %g, best prior %g (-%.1f%% > tol %.0f%%)"
                                % (r["name"], metric, value, best,
                                   100 * (1 - value / best), 100 * tol))

    failures.extend(ratio_failures(results))
    print("benchjson: gated %d metrics of %d benchmarks against %s"
          % (checked, len(results), trajectory_path))
    if failures:
        sys.exit("perf trajectory gate failed:\n  " + "\n  ".join(failures))
    print("benchjson: trajectory gate passed")


def main():
    args = sys.argv[1:]
    if args and args[0] == "--merge":
        if len(args) < 3:
            sys.exit(__doc__)
        merge(args[1], args[2:])
        return
    if args and args[0] == "--gate":
        args.pop(0)
        tol = 0.10
        while args and args[0].startswith("--tol"):
            opt = args.pop(0)
            if opt == "--tol":
                if not args:
                    sys.exit("benchjson: --tol needs a fraction")
                tol = float(args.pop(0))
            else:
                tol = float(opt.split("=", 1)[1])
        if len(args) != 2:
            sys.exit(__doc__)
        gate(args[0], args[1], tol)
        return
    required = []
    while args and args[0].startswith("--"):
        opt = args.pop(0)
        if opt == "--require":
            if not args:
                sys.exit("benchjson: --require needs a name list")
            required.extend(n for n in args.pop(0).split(",") if n)
        elif opt.startswith("--require="):
            required.extend(n for n in opt.split("=", 1)[1].split(",") if n)
        else:
            sys.exit("benchjson: unknown option %s\n%s" % (opt, __doc__))
    if len(args) != 2:
        sys.exit(__doc__)
    src, dst = args
    results = parse(src)
    if not results:
        sys.exit("benchjson: no benchmark result lines in %s" % src)

    missing = [n for n in required
               if not any(n in r["name"] for r in results)]
    if missing:
        sys.exit("benchjson: required benchmark(s) missing from %s: %s"
                 % (src, ", ".join(missing)))

    failures = []
    for r in results:
        padded = r["name"] + " "
        gated = any(z in padded for z in ZERO_ALLOC)
        allocs = r["metrics"].get("allocs/op")
        if gated and allocs is not None and allocs != 0:
            failures.append("%s: %g allocs/op, want 0" % (r["name"], allocs))
    failures.extend(ratio_failures(results))

    with open(dst, "w") as f:
        json.dump({"benchmarks": results}, f, indent=2, sort_keys=True)
        f.write("\n")
    print("benchjson: wrote %d results to %s" % (len(results), dst))

    if failures:
        sys.exit("perf gate failed:\n  " + "\n  ".join(failures))


if __name__ == "__main__":
    main()
