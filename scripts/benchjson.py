#!/usr/bin/env python3
"""Convert `go test -bench` output to JSON and enforce the perf gate.

Usage: benchjson.py [--require NAME[,NAME...]] BENCH_OUTPUT.txt BENCH.json
       benchjson.py --merge BENCH_trajectory.json BENCH_pr*.json

Parses every benchmark result line into {name, iterations, metrics{unit:
value}} and writes the collection as JSON. The output path is free-form,
so independent gates can publish side by side (BENCH_pr5.json,
BENCH_pr6.json, ...) without clobbering each other. Exits non-zero when:

  * no benchmark lines were found (the bench run silently did nothing), or
  * any --require name has no matching result — a renamed or deleted
    benchmark must fail the gate loudly, not publish a JSON that silently
    stopped covering it, or
  * any benchmark in ZERO_ALLOC reports a non-zero allocs/op — these pin
    the zero-allocation hot path (pooled event engine, packet free-lists,
    sketch fast hashing) and a regression here is a build breaker.

--require names are substring matches against the result names (which may
carry a -<GOMAXPROCS> suffix), so "BenchmarkShardedThroughput" covers its
sub-benchmarks too.

--merge folds the per-PR gate files into one trajectory document keyed by
benchmark name: {benchmarks: {name: [{source, iterations, metrics}, ...]}},
inputs ordered by the numeric PR suffix when present (BENCH_pr5 before
BENCH_pr10) so each list reads as the metric's history across the stack.
Exits non-zero when an input is missing, unparsable, or empty.
"""

import json
import re
import sys

# Benchmarks whose steady state must not allocate. Substring match against
# the benchmark name (which may carry a -<GOMAXPROCS> suffix).
ZERO_ALLOC = [
    "BenchmarkSchedule/",      # never emitted; placeholder for subbenches
    "BenchmarkSchedule-",
    "BenchmarkSchedule ",
    "BenchmarkSketchInsert",
    "BenchmarkPortForward",
    "BenchmarkDispatchPlan",
    "BenchmarkTunerStep",
]

LINE = re.compile(r"^(Benchmark\S+)\s+(\d+)\s+(.*)$")
METRIC = re.compile(r"([-+0-9.eE]+)\s+(\S+)")


def parse(path):
    results = []
    with open(path) as f:
        for line in f:
            m = LINE.match(line.strip())
            if not m:
                continue
            name, iters, rest = m.group(1), int(m.group(2)), m.group(3)
            metrics = {}
            for mm in METRIC.finditer(rest):
                try:
                    metrics[mm.group(2)] = float(mm.group(1))
                except ValueError:
                    continue
            results.append({"name": name, "iterations": iters, "metrics": metrics})
    return results


def source_key(path):
    """Sort key: numeric PR suffix when present, else lexical.

    BENCH_pr5.json sorts before BENCH_pr10.json; files without the
    suffix sort after the numbered ones, lexically.
    """
    m = re.search(r"pr(\d+)", path)
    if m:
        return (0, int(m.group(1)), path)
    return (1, 0, path)


def merge(dst, srcs):
    if not srcs:
        sys.exit("benchjson: --merge needs at least one input file")
    trajectory = {}
    for src in sorted(srcs, key=source_key):
        try:
            with open(src) as f:
                doc = json.load(f)
        except (OSError, ValueError) as e:
            sys.exit("benchjson: --merge: %s: %s" % (src, e))
        results = doc.get("benchmarks")
        if not isinstance(results, list) or not results:
            sys.exit("benchjson: --merge: %s has no benchmarks" % src)
        label = re.sub(r"^BENCH_|\.json$", "", src.rsplit("/", 1)[-1])
        for r in results:
            trajectory.setdefault(r["name"], []).append({
                "source": label,
                "iterations": r.get("iterations"),
                "metrics": r.get("metrics", {}),
            })
    with open(dst, "w") as f:
        json.dump({"benchmarks": trajectory}, f, indent=2, sort_keys=True)
        f.write("\n")
    print("benchjson: merged %d files (%d benchmark names) into %s"
          % (len(srcs), len(trajectory), dst))


def main():
    args = sys.argv[1:]
    if args and args[0] == "--merge":
        if len(args) < 3:
            sys.exit(__doc__)
        merge(args[1], args[2:])
        return
    required = []
    while args and args[0].startswith("--"):
        opt = args.pop(0)
        if opt == "--require":
            if not args:
                sys.exit("benchjson: --require needs a name list")
            required.extend(n for n in args.pop(0).split(",") if n)
        elif opt.startswith("--require="):
            required.extend(n for n in opt.split("=", 1)[1].split(",") if n)
        else:
            sys.exit("benchjson: unknown option %s\n%s" % (opt, __doc__))
    if len(args) != 2:
        sys.exit(__doc__)
    src, dst = args
    results = parse(src)
    if not results:
        sys.exit("benchjson: no benchmark result lines in %s" % src)

    missing = [n for n in required
               if not any(n in r["name"] for r in results)]
    if missing:
        sys.exit("benchjson: required benchmark(s) missing from %s: %s"
                 % (src, ", ".join(missing)))

    failures = []
    for r in results:
        padded = r["name"] + " "
        gated = any(z in padded for z in ZERO_ALLOC)
        allocs = r["metrics"].get("allocs/op")
        if gated and allocs is not None and allocs != 0:
            failures.append("%s: %g allocs/op, want 0" % (r["name"], allocs))

    with open(dst, "w") as f:
        json.dump({"benchmarks": results}, f, indent=2, sort_keys=True)
        f.write("\n")
    print("benchjson: wrote %d results to %s" % (len(results), dst))

    if failures:
        sys.exit("perf gate failed:\n  " + "\n  ".join(failures))


if __name__ == "__main__":
    main()
