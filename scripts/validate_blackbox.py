#!/usr/bin/env python3
"""Validate flight-recorder black-box artifacts against their schema.

Usage: validate_blackbox.py ARTIFACT.json [ARTIFACT.json ...]

Checks the invariants cmd/paraleon-analyze and the CI artifact probe
rely on (see internal/telemetry/series):

  * version is the current ArtifactVersion (1) and meta names the run;
  * every series carries aligned t/v arrays, a stride >= 1, and an
    offered count consistent with what was stored;
  * every anomaly's snapshot index points into the snapshots array (or
    is -1 when the per-run snapshot budget was exhausted);
  * histogram snapshots keep counts cumulative and aligned with
    bounds + 1 (the +Inf bucket).

Exits non-zero naming the first violated invariant.
"""

import json
import sys

REQUIRED_SERIES = (
    "utility",
    "monitor_kl",
    "queue_bytes_tor0",
    "pfc_pause_frac_tor0",
)


def fail(path, msg):
    sys.exit("validate_blackbox: %s: %s" % (path, msg))


def check(path):
    try:
        with open(path) as f:
            a = json.load(f)
    except (OSError, ValueError) as e:
        fail(path, str(e))

    if a.get("version") != 1:
        fail(path, "version %r, want 1" % a.get("version"))
    meta = a.get("meta", {})
    if not meta.get("experiment"):
        fail(path, "meta.experiment missing")

    anomalies = a.get("anomalies")
    if not isinstance(anomalies, list):
        fail(path, "anomalies is %r, want a list" % type(anomalies))
    snapshots = a.get("snapshots", [])
    for i, an in enumerate(anomalies):
        if not an.get("kind"):
            fail(path, "anomaly %d has no kind" % i)
        snap = an.get("snapshot", -1)
        if snap != -1 and not (0 <= snap < len(snapshots)):
            fail(path, "anomaly %d snapshot index %d out of range" % (i, snap))

    series = a.get("series", [])
    names = set()
    for s in series:
        name = s.get("name")
        if not name:
            fail(path, "series without a name")
        names.add(name)
        if len(s.get("t", [])) != len(s.get("v", [])):
            fail(path, "series %s: t/v length mismatch" % name)
        if s.get("stride", 0) < 1:
            fail(path, "series %s: stride %r < 1" % (name, s.get("stride")))
        if s.get("offered", 0) < len(s.get("t", [])):
            fail(path, "series %s: offered %r < stored %d"
                 % (name, s.get("offered"), len(s.get("t", []))))
    for req in REQUIRED_SERIES:
        if req not in names:
            fail(path, "required series %s missing" % req)

    for h in a.get("histograms", []):
        name = h.get("name", "?")
        bounds, counts = h.get("bounds", []), h.get("counts", [])
        if len(counts) != len(bounds) + 1:
            fail(path, "histogram %s: %d counts for %d bounds"
                 % (name, len(counts), len(bounds)))
        if any(counts[i] > counts[i + 1] for i in range(len(counts) - 1)):
            fail(path, "histogram %s: counts not cumulative" % name)
        if counts and counts[-1] != h.get("count"):
            fail(path, "histogram %s: count %r != last cumulative %d"
                 % (name, h.get("count"), counts[-1]))

    print("validate_blackbox: %s ok (%d series, %d anomalies, %d histograms)"
          % (path, len(series), len(anomalies), len(a.get("histograms", []))))


def main():
    if len(sys.argv) < 2:
        sys.exit(__doc__)
    for path in sys.argv[1:]:
        check(path)


if __name__ == "__main__":
    main()
